//! Golden-file tests: run the transform schedules from `examples/` and
//! check the printed IR against `.expected` files with the FileCheck-lite
//! DSL (`td_support::filecheck` — ordered `CHECK:` substrings plus
//! `CHECK-NOT:` exclusions scoped to the gap before the next match).
//!
//! The `.expected` files live in `tests/golden/` and deliberately check op
//! names, attributes, and structure — never SSA value numbers — so the
//! printer is free to renumber.

use td_support::filecheck;
use td_transform::{InterpEnv, Interpreter};

fn assert_checks(name: &str, output: &str, spec: &str) {
    if let Err(report) = filecheck::check(output, spec) {
        panic!("golden check '{name}' failed: {report}\n=== full output ===\n{output}");
    }
}

/// The quickstart schedule (tile by 64, unroll by 4) against its golden
/// file. Payload and script are the ones from `examples/quickstart.rs`.
#[test]
fn quickstart_tile_unroll_matches_golden() {
    let payload_src = r#"module {
  func.func @saxpy(%x: memref<1024xf32>, %y: memref<1024xf32>) {
    %lo = arith.constant 0 : index
    %hi = arith.constant 1024 : index
    %st = arith.constant 1 : index
    %a = arith.constant 2.0 : f32
    scf.for %i = %lo to %hi step %st {
      %xv = "memref.load"(%x, %i) : (memref<1024xf32>, index) -> f32
      %yv = "memref.load"(%y, %i) : (memref<1024xf32>, index) -> f32
      %ax = "arith.mulf"(%a, %xv) : (f32, f32) -> f32
      %s = "arith.addf"(%ax, %yv) : (f32, f32) -> f32
      "memref.store"(%s, %y, %i) : (f32, memref<1024xf32>, index) -> ()
    }
    func.return
  }
}"#;
    let script_src = r#"module {
  transform.named_sequence @optimize(%root: !transform.any_op) {
    %loop = "transform.match_op"(%root) {name = "scf.for", select = "first"} : (!transform.any_op) -> !transform.any_op
    %tiles, %points = "transform.loop.tile"(%loop) {tile_sizes = [64]} : (!transform.any_op) -> (!transform.any_op, !transform.any_op)
    %unrolled = "transform.loop.unroll"(%points) {factor = 4} : (!transform.any_op) -> !transform.any_op
  }
}"#;
    let mut ctx = td_ir::Context::new();
    td_dialects::register_all_dialects(&mut ctx);
    td_transform::register_transform_dialect(&mut ctx);
    let payload = td_ir::parse_module(&mut ctx, payload_src).unwrap();
    let script = td_ir::parse_module(&mut ctx, script_src).unwrap();
    let entry = ctx.lookup_symbol(script, "optimize").unwrap();
    let env = InterpEnv::standard();
    Interpreter::new(&env)
        .apply(&mut ctx, entry, payload)
        .unwrap();
    td_ir::verify::verify(&ctx, payload).unwrap();
    assert_checks(
        "quickstart_tile_unroll",
        &td_ir::print_op(&ctx, payload),
        include_str!("golden/quickstart_tile_unroll.expected"),
    );
}

/// The quickstart schedule again, this time with every observability
/// channel on — the programmatic equivalents of `TD_PRINT_IR_AFTER=all`,
/// `TD_REMARKS=applied`, and `TD_TRACE` — and the combined transcript
/// (IR snapshots, then remarks, then the trace tree) checked against a
/// golden file: snapshot headers per transform op, the known applied
/// remarks, and the handle-invalidation events from consumed handles.
#[test]
fn quickstart_observability_matches_golden() {
    use std::fmt::Write as _;
    use std::sync::{Arc, Mutex};
    use td_support::trace::{self, PrintFilter, PrintIr};
    use td_support::{diag, RemarkFilter};

    let payload_src = r#"module {
  func.func @saxpy(%x: memref<1024xf32>, %y: memref<1024xf32>) {
    %lo = arith.constant 0 : index
    %hi = arith.constant 1024 : index
    %st = arith.constant 1 : index
    %a = arith.constant 2.0 : f32
    scf.for %i = %lo to %hi step %st {
      %xv = "memref.load"(%x, %i) : (memref<1024xf32>, index) -> f32
      %yv = "memref.load"(%y, %i) : (memref<1024xf32>, index) -> f32
      %ax = "arith.mulf"(%a, %xv) : (f32, f32) -> f32
      %s = "arith.addf"(%ax, %yv) : (f32, f32) -> f32
      "memref.store"(%s, %y, %i) : (f32, memref<1024xf32>, index) -> ()
    }
    func.return
  }
}"#;
    let script_src = r#"module {
  transform.named_sequence @optimize(%root: !transform.any_op) {
    %loop = "transform.match_op"(%root) {name = "scf.for", select = "first"} : (!transform.any_op) -> !transform.any_op
    %tiles, %points = "transform.loop.tile"(%loop) {tile_sizes = [64]} : (!transform.any_op) -> (!transform.any_op, !transform.any_op)
    %unrolled = "transform.loop.unroll"(%points) {factor = 4} : (!transform.any_op) -> !transform.any_op
  }
}"#;
    trace::reset();
    trace::set_enabled(true);
    diag::reset_remarks();
    diag::set_remark_filter(RemarkFilter::parse("applied"));
    let snapshots = Arc::new(Mutex::new(String::new()));

    let mut ctx = td_ir::Context::new();
    td_dialects::register_all_dialects(&mut ctx);
    td_transform::register_transform_dialect(&mut ctx);
    let payload = td_ir::parse_module(&mut ctx, payload_src).unwrap();
    let script = td_ir::parse_module(&mut ctx, script_src).unwrap();
    let entry = ctx.lookup_symbol(script, "optimize").unwrap();
    let env = InterpEnv::standard();
    let mut interp = Interpreter::new(&env);
    interp.add_instrumentation(Box::new(PrintIr::with_buffer(
        PrintFilter::default(),
        PrintFilter::parse("all"),
        Arc::clone(&snapshots),
    )));
    interp.apply(&mut ctx, entry, payload).unwrap();

    let mut transcript = snapshots.lock().unwrap().clone();
    for remark in diag::take_remarks() {
        let _ = writeln!(transcript, "{remark}");
    }
    transcript.push_str(&trace::take().to_tree_string());
    trace::clear_enabled_override();
    diag::clear_remark_filter_override();

    assert_checks(
        "quickstart_observability",
        &transcript,
        include_str!("golden/quickstart_observability.expected"),
    );
}

/// The two failure channels that must keep their remark shape while the
/// provenance journal observes them: a suppressed silenceable error (one
/// missed remark from the suppressing sequence) and a failed dynamic
/// condition check (one analysis remark naming the undeclared op).
#[test]
fn failure_remarks_match_golden() {
    use std::fmt::Write as _;
    use td_support::{diag, Location, RemarkFilter};
    use td_transform::TransformOpDef;

    let payload_src = r#"module {
  func.func @f(%m: memref<256xf32>) {
    %lo = arith.constant 0 : index
    %hi = arith.constant 256 : index
    %st = arith.constant 1 : index
    scf.for %i = %lo to %hi step %st {
      %v = "memref.load"(%m, %i) : (memref<256xf32>, index) -> f32
      "test.use"(%v) : (f32) -> ()
    }
    func.return
  }
}"#;
    diag::reset_remarks();
    diag::set_remark_filter(RemarkFilter::parse("missed,analysis"));

    // Channel 1: a silenceable error swallowed by a suppressing sequence.
    {
        let script_src = r#"module {
  transform.named_sequence @main(%root: !transform.any_op) {
    "transform.sequence"(%root) ({
    ^bb0(%arg: !transform.any_op):
      %missing = "transform.match_op"(%arg) {name = "nonexistent.op", select = "first"} : (!transform.any_op) -> !transform.any_op
      "transform.yield"() : () -> ()
    }) {failure_propagation_mode = "suppress"} : (!transform.any_op) -> ()
  }
}"#;
        let mut ctx = td_bench::full_context();
        let payload = td_ir::parse_module(&mut ctx, payload_src).unwrap();
        let script = td_ir::parse_module(&mut ctx, script_src).unwrap();
        let entry = ctx.lookup_symbol(script, "main").unwrap();
        let env = InterpEnv::standard();
        Interpreter::new(&env)
            .apply(&mut ctx, entry, payload)
            .unwrap();
    }

    // Channel 2: a transform whose declaration lies (introduces
    // test.surprise, declares arith.constant) under dynamic checking.
    {
        let script_src = r#"module {
  transform.named_sequence @main(%root: !transform.any_op) {
    %loop = "transform.match_op"(%root) {name = "scf.for", select = "first"} : (!transform.any_op) -> !transform.any_op
    "transform.misdeclared"(%loop) : (!transform.any_op) -> ()
  }
}"#;
        let mut ctx = td_bench::full_context();
        ctx.registry.register(td_ir::OpSpec::new(
            "transform.misdeclared",
            "buggy extension",
        ));
        let payload = td_ir::parse_module(&mut ctx, payload_src).unwrap();
        let script = td_ir::parse_module(&mut ctx, script_src).unwrap();
        let entry = ctx.lookup_symbol(script, "main").unwrap();
        let mut env = InterpEnv::standard();
        env.config.check_conditions = true;
        env.transforms.register(
            TransformOpDef::new(
                "transform.misdeclared",
                "declares wrong post",
                |_, ctx, state, op| {
                    let handle = ctx.op(op).operands()[0];
                    let location = ctx.op(op).location.clone();
                    let targets = state.ops(handle, &location)?;
                    let mut b = td_ir::OpBuilder::before(ctx, targets[0]);
                    b.set_location(Location::name("surprise"));
                    b.op("test.surprise").build();
                    Ok(())
                },
            )
            .with_conditions([], ["arith.constant"]),
        );
        Interpreter::new(&env)
            .apply(&mut ctx, entry, payload)
            .unwrap_err();
    }

    let mut transcript = String::new();
    for remark in diag::take_remarks() {
        let _ = writeln!(transcript, "{remark}");
    }
    diag::clear_remark_filter_override();

    assert_checks(
        "failure_remarks",
        &transcript,
        include_str!("golden/failure_remarks.expected"),
    );
}

/// Script-on-script optimization against its golden file: the include is
/// inlined, the parameter propagated, and the no-op unroll removed. The
/// script is the one from `examples/transform_script_optimization.rs`.
#[test]
fn script_optimization_matches_golden() {
    use td_transform::script_opt::{inline_includes, propagate_params, simplify};
    let script_src = r#"module {
  transform.named_sequence @tile_by(%loop: !transform.any_op, %size: !transform.param) {
    %t0, %t1 = "transform.loop.tile"(%loop, %size) : (!transform.any_op, !transform.param) -> (!transform.any_op, !transform.any_op)
  }
  transform.named_sequence @main(%root: !transform.any_op) {
    %loop = "transform.match_op"(%root) {name = "scf.for", select = "first"} : (!transform.any_op) -> !transform.any_op
    %noop = "transform.loop.unroll"(%loop) {factor = 1} : (!transform.any_op) -> !transform.any_op
    %size = "transform.param.constant"() {value = 32} : () -> !transform.param
    "transform.include"(%noop, %size) {target = @tile_by} : (!transform.any_op, !transform.param) -> ()
  }
}"#;
    let mut ctx = td_bench::full_context();
    let script = td_ir::parse_module(&mut ctx, script_src).unwrap();
    assert_eq!(
        inline_includes(&mut ctx, script).unwrap(),
        1,
        "one include inlined"
    );
    assert_eq!(
        propagate_params(&mut ctx, script),
        1,
        "one parameter propagated"
    );
    assert_eq!(simplify(&mut ctx, script), 1, "one no-op removed");
    assert_checks(
        "script_optimization",
        &td_ir::print_op(&ctx, script),
        include_str!("golden/script_optimization.expected"),
    );
}

/// The committed fuzz regression corpus (`tests/golden/fuzz/`) replays
/// clean through the full differential oracle: every repro pair must
/// produce identical results across direct Auto/Always interpretation,
/// 1-vs-4 engine workers, journaling, and cold/warm cache runs.
#[test]
fn fuzz_corpus_replays_clean() {
    let _guard = td_support::fault::test_guard();
    let dir = td_fuzz::corpus::default_corpus_dir();
    let replayed = td_fuzz::corpus::replay(&dir).unwrap_or_else(|err| panic!("{err}"));
    assert!(
        replayed >= 5,
        "expected at least 5 committed fuzz repros in {}, found {replayed}",
        dir.display()
    );
}

/// The quickstart schedule profiled: the trace folds into a collapsed
/// (speedscope-loadable) stack export plus the profile JSON, both with
/// corpus-stable structure. Checks pin stack paths and field names only —
/// the weights are wall-clock and free to shift.
#[test]
fn profiler_speedscope_export_matches_golden() {
    let payload_src = r#"module {
  func.func @work(%m: memref<256xf32>) {
    %lo = arith.constant 0 : index
    %hi = arith.constant 256 : index
    %st = arith.constant 1 : index
    scf.for %i = %lo to %hi step %st {
      %v = "memref.load"(%m, %i) : (memref<256xf32>, index) -> f32
      "test.use"(%v) : (f32) -> ()
    }
    func.return
  }
}"#;
    let script_src = r#"module {
  transform.named_sequence @main(%root: !transform.any_op) {
    %loop = "transform.match_op"(%root) {name = "scf.for", select = "first"} : (!transform.any_op) -> !transform.any_op
    %tiles, %points = "transform.loop.tile"(%loop) {tile_sizes = [32]} : (!transform.any_op) -> (!transform.any_op, !transform.any_op)
    %unrolled = "transform.loop.unroll"(%points) {factor = 2} : (!transform.any_op) -> !transform.any_op
  }
}"#;
    let mut ctx = td_ir::Context::new();
    td_dialects::register_all_dialects(&mut ctx);
    td_transform::register_transform_dialect(&mut ctx);
    let payload = td_ir::parse_module(&mut ctx, payload_src).unwrap();
    let script = td_ir::parse_module(&mut ctx, script_src).unwrap();
    let entry = ctx.lookup_symbol(script, "main").unwrap();
    td_support::trace::reset();
    td_support::trace::set_enabled(true);
    Interpreter::new(&InterpEnv::standard())
        .apply(&mut ctx, entry, payload)
        .unwrap();
    td_support::trace::clear_enabled_override();
    let profile = td_support::profile::Profile::from_trace(&td_support::trace::take());

    let output = format!(
        "=== collapsed ===\n{}=== report ===\n{}=== json ===\n{}\n",
        profile.to_collapsed(),
        profile.to_report_string(5),
        profile.to_json()
    );
    td_support::trace::validate_json(&profile.to_json()).expect("profile JSON well-formed");
    assert_checks(
        "profiler_speedscope",
        &output,
        include_str!("golden/profiler_speedscope.expected"),
    );
}

/// A flight-recorder bundle after an injected panic (the `TD_FAULT`
/// grammar's `panic@step=1` plan, set programmatically so parallel tests
/// never race on the environment): the ring replays the failing step's
/// attribution and the bundle passes the std-only JSON validator with
/// corpus-stable field ordering.
#[test]
fn flight_recorder_bundle_matches_golden() {
    let payload_src = r#"module {
  func.func @work(%m: memref<64xf32>) {
    %lo = arith.constant 0 : index
    %hi = arith.constant 64 : index
    %st = arith.constant 1 : index
    scf.for %i = %lo to %hi step %st {
      %v = "memref.load"(%m, %i) : (memref<64xf32>, index) -> f32
      "test.use"(%v) : (f32) -> ()
    }
    func.return
  }
}"#;
    let script_src = r#"module {
  transform.named_sequence @main(%root: !transform.any_op) {
    %loop = "transform.match_op"(%root) {name = "scf.for", select = "first"} : (!transform.any_op) -> !transform.any_op
    %tiles, %points = "transform.loop.tile"(%loop) {tile_sizes = [16]} : (!transform.any_op) -> (!transform.any_op, !transform.any_op)
  }
}"#;
    let mut ctx = td_ir::Context::new();
    td_dialects::register_all_dialects(&mut ctx);
    td_transform::register_transform_dialect(&mut ctx);
    let payload = td_ir::parse_module(&mut ctx, payload_src).unwrap();
    let script = td_ir::parse_module(&mut ctx, script_src).unwrap();
    let entry = ctx.lookup_symbol(script, "main").unwrap();

    td_support::flight::reset();
    td_support::fault::set_thread_plan(Some(
        td_support::fault::FaultPlan::parse("panic@step=1").unwrap(),
    ));
    td_support::fault::set_lane(0);
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let err = Interpreter::new(&InterpEnv::standard())
        .apply(&mut ctx, entry, payload)
        .expect_err("injected panic must surface");
    std::panic::set_hook(hook);
    td_support::fault::set_thread_plan(None);
    assert!(!err.is_silenceable(), "contained panic is definite");

    let bundle =
        td_support::flight::bundle_json("definite-failure", &[("source", "golden".to_owned())]);
    td_support::trace::validate_json(&bundle).expect("flight bundle well-formed");
    assert_checks(
        "flight_recorder_bundle",
        &bundle,
        include_str!("golden/flight_recorder_bundle.expected"),
    );
}
