//! Cross-crate integration tests: full flows from textual IR through the
//! Transform interpreter, the pass pipelines, and the execution substrate.

use td_bench::{full_context, full_pass_registry};
use td_machine::{run_function_with_buffers, ArgBuilder, ExecConfig, MicrokernelLibrary, RtValue};
use td_transform::{InterpEnv, Interpreter};

/// Parse payload + script, apply, verify, execute — the full quickstart
/// loop, checked numerically.
#[test]
fn script_transformed_code_computes_identically() {
    let payload_src = r#"module {
  func.func @sum(%x: memref<256xf32>, %out: memref<1xf32>) {
    %lo = arith.constant 0 : index
    %hi = arith.constant 256 : index
    %st = arith.constant 1 : index
    %zero = arith.constant 0 : index
    scf.for %i = %lo to %hi step %st {
      %xv = "memref.load"(%x, %i) : (memref<256xf32>, index) -> f32
      %acc = "memref.load"(%out, %zero) : (memref<1xf32>, index) -> f32
      %s = "arith.addf"(%acc, %xv) : (f32, f32) -> f32
      "memref.store"(%s, %out, %zero) : (f32, memref<1xf32>, index) -> ()
    }
    func.return
  }
}"#;
    let script_src = r#"module {
  transform.named_sequence @opt(%root: !transform.any_op) {
    %loop = "transform.match_op"(%root) {name = "scf.for", select = "first"} : (!transform.any_op) -> !transform.any_op
    %tiles, %points = "transform.loop.tile"(%loop) {tile_sizes = [32]} : (!transform.any_op) -> (!transform.any_op, !transform.any_op)
    %u = "transform.loop.unroll"(%points) {factor = 8} : (!transform.any_op) -> !transform.any_op
  }
}"#;

    let run = |transform: bool| -> f64 {
        let mut ctx = full_context();
        let payload = td_ir::parse_module(&mut ctx, payload_src).unwrap();
        if transform {
            let script = td_ir::parse_module(&mut ctx, script_src).unwrap();
            let entry = ctx.lookup_symbol(script, "opt").unwrap();
            let env = InterpEnv::standard();
            Interpreter::new(&env)
                .apply(&mut ctx, entry, payload)
                .unwrap();
            td_ir::verify::verify(&ctx, payload).unwrap();
        }
        let mut args = ArgBuilder::new();
        let x = args.buffer((0..256).map(|i| (i as f64) * 0.5).collect());
        let out = args.buffer(vec![0.0]);
        let buffers = args.into_buffers();
        let (_, buffers, _) = run_function_with_buffers(
            &ctx,
            payload,
            "sum",
            vec![x, out],
            buffers,
            ExecConfig::default(),
            None,
        )
        .unwrap();
        buffers[1][0]
    };
    let reference = run(false);
    let transformed = run(true);
    assert_eq!(reference, transformed);
    assert_eq!(reference, (0..256).map(|i| (i as f64) * 0.5).sum::<f64>());
}

/// The pass manager and the transform interpreter produce byte-identical
/// IR for the same pipeline — on every Table 1 model.
#[test]
fn pass_manager_and_interpreter_agree_on_all_models() {
    let registry = full_pass_registry();
    for spec in td_modelgen::paper_models() {
        if spec.target_ops > 1500 {
            continue; // keep CI time bounded; the harness covers the rest
        }
        let mut ctx1 = full_context();
        let m1 = td_modelgen::build_model(&mut ctx1, &spec);
        registry
            .parse_pipeline(td_dialects::passes::TOSA_PIPELINE)
            .unwrap()
            .run(&mut ctx1, m1)
            .unwrap();

        let mut ctx2 = full_context();
        let m2 = td_modelgen::build_model(&mut ctx2, &spec);
        let script =
            td_transform::pipeline_to_script(&mut ctx2, td_dialects::passes::TOSA_PIPELINE)
                .unwrap();
        let entry = td_transform::transform_main(&ctx2, script).unwrap();
        let mut env = InterpEnv::standard();
        env.passes = Some(&registry);
        Interpreter::new(&env).apply(&mut ctx2, entry, m2).unwrap();

        assert_eq!(
            td_ir::print_op(&ctx1, m1),
            td_ir::print_op(&ctx2, m2),
            "{} diverged",
            spec.name
        );
    }
}

/// A lowered (LLVM-dialect) model still executes and produces finite
/// results: the whole TOSA → loops → execution path.
#[test]
fn lowered_model_executes() {
    let mut ctx = full_context();
    let spec = &td_modelgen::paper_models()[0]; // Squeezenet-like
    let module = td_modelgen::build_model(&mut ctx, spec);
    let registry = full_pass_registry();
    registry
        .parse_pipeline(td_dialects::passes::TOSA_PIPELINE)
        .unwrap()
        .run(&mut ctx, module)
        .unwrap();
    td_ir::verify::verify(&ctx, module).unwrap();
    // Input: one NHWC feature map buffer.
    let mut args = ArgBuilder::new();
    let input = args.buffer(vec![0.01; (8 * 8 * spec.hidden) as usize]);
    let buffers = args.into_buffers();
    let mut config = ExecConfig::default();
    config.max_steps = 2_000_000_000;
    let (results, _buffers, report) =
        run_function_with_buffers(&ctx, module, "main", vec![input], buffers, config, None)
            .unwrap();
    assert_eq!(results.len(), 1, "model returns its output memref");
    assert!(matches!(results[0], RtValue::Ptr(_)));
    assert!(report.instructions > 1000);
}

/// Case Study 2, as an integration test: naive pipeline fails only on the
/// dynamic-offset program, with the paper's error; fixed pipeline passes.
#[test]
fn cs2_pipeline_failure_modes() {
    let program = |dynamic: bool| -> String {
        let (sig, offs, operands, ty, ro) = if dynamic {
            (
                "%m: memref<8x8xf32>, %o: index",
                "[-9223372036854775808, 0]",
                "(%m, %o)",
                "(memref<8x8xf32>, index)",
                "?",
            )
        } else {
            (
                "%m: memref<8x8xf32>",
                "[0, 0]",
                "(%m)",
                "(memref<8x8xf32>)",
                "0",
            )
        };
        format!(
            r#"module {{
  func.func @f({sig}) {{
    %v = "memref.subview"{operands} {{static_offsets = {offs}, static_sizes = [2, 2], static_strides = [1, 1]}} : {ty} -> memref<2x2xf32, strided<[8, 1], offset: {ro}>>
    %c = arith.constant 7.0 : f32
    %z = arith.constant 0 : index
    "memref.store"(%c, %v, %z, %z) : (f32, memref<2x2xf32, strided<[8, 1], offset: {ro}>>, index, index) -> ()
    func.return
  }}
}}"#
        )
    };
    let registry = full_pass_registry();
    let compile = |pipeline: &str, dynamic: bool| -> Result<(), String> {
        let mut ctx = full_context();
        let module = td_ir::parse_module(&mut ctx, &program(dynamic)).unwrap();
        registry
            .parse_pipeline(pipeline)
            .unwrap()
            .run(&mut ctx, module)
            .map_err(|e| e.to_string())
    };
    assert!(compile(td_dialects::passes::CS2_NAIVE_PIPELINE, false).is_ok());
    let err = compile(td_dialects::passes::CS2_NAIVE_PIPELINE, true).unwrap_err();
    assert!(
        err.contains("failed to legalize operation 'builtin.unrealized_conversion_cast'"),
        "got: {err}"
    );
    assert!(compile(td_dialects::passes::CS2_FIXED_PIPELINE, false).is_ok());
    assert!(compile(td_dialects::passes::CS2_FIXED_PIPELINE, true).is_ok());
}

/// `transform.to_library` inside `alternatives`, end-to-end from text:
/// the kernel call replaces the nest and computes the same result.
#[test]
fn to_library_end_to_end() {
    use td_bench::cs4::{apply_variant, build_payload, run_payload, Cs4Config, Variant};
    let config = Cs4Config {
        m: 32,
        n: 32,
        k: 16,
    };
    let mut reference = None;
    for variant in [Variant::Baseline, Variant::TransformLibrary] {
        let mut ctx = full_context();
        let module = build_payload(&mut ctx, config);
        apply_variant(&mut ctx, module, variant);
        let (checksum, _) = run_payload(&ctx, module, config);
        let reference = *reference.get_or_insert(checksum);
        assert!((checksum - reference).abs() < 1e-9);
    }
    // And the library variant really contains the kernel call.
    let mut ctx = full_context();
    let module = build_payload(&mut ctx, config);
    apply_variant(&mut ctx, module, Variant::TransformLibrary);
    let has_kernel = ctx
        .walk_nested(module)
        .iter()
        .any(|&op| ctx.op(op).attr("microkernel").is_some());
    assert!(has_kernel);
    let _ = MicrokernelLibrary::libxsmm();
}

/// Static script checking composes with `apply_registered_pass` scripts:
/// a generated pipeline script is checkable before running.
#[test]
fn generated_scripts_are_statically_checkable() {
    let mut ctx = full_context();
    let script =
        td_transform::pipeline_to_script(&mut ctx, td_dialects::passes::CS2_FIXED_PIPELINE)
            .unwrap();
    let entry = td_transform::transform_main(&ctx, script).unwrap();
    let registry = td_transform::TransformOpRegistry::with_standard_ops();
    let report = td_transform::check_script(
        &ctx,
        &registry,
        entry,
        &[
            "func.func",
            "func.return",
            "arith.constant",
            "scf.for",
            "memref.subview",
            "memref.store",
        ],
        &td_transform::OpSet::of(["llvm.*"]),
    )
    .unwrap();
    assert!(report.is_ok(), "leftover: {:?}", report.leftover);

    let mut ctx = full_context();
    let script =
        td_transform::pipeline_to_script(&mut ctx, td_dialects::passes::CS2_NAIVE_PIPELINE)
            .unwrap();
    let entry = td_transform::transform_main(&ctx, script).unwrap();
    let report = td_transform::check_script(
        &ctx,
        &registry,
        entry,
        &[
            "func.func",
            "func.return",
            "arith.constant",
            "scf.for",
            "memref.subview",
            "memref.store",
        ],
        &td_transform::OpSet::of(["llvm.*"]),
    )
    .unwrap();
    assert!(!report.is_ok());
    assert!(report.leftover.contains(&"affine.apply".to_owned()));
}

/// IRDL-defined constraints refine payload scans: a trivial subview is
/// classified as `memref.subview.constr`, a strided one is not.
#[test]
fn irdl_constraint_refines_payload_scan() {
    let mut ctx = full_context();
    let module = td_ir::parse_module(
        &mut ctx,
        r#"module {
  func.func @f(%m: memref<8x8xf32>) {
    %trivial = "memref.subview"(%m) {static_offsets = [0, 0], static_sizes = [2, 2], static_strides = [1, 1]} : (memref<8x8xf32>) -> memref<2x2xf32, strided<[8, 1], offset: 0>>
    "test.use"(%trivial) : (memref<2x2xf32, strided<[8, 1], offset: 0>>) -> ()
    func.return
  }
}"#,
    )
    .unwrap();
    let mut irdl = td_irdl::IrdlRegistry::new();
    td_irdl::def::register_standard_constraints(&mut irdl);
    let descriptors = td_transform::conditions::scan_payload_ops(&ctx, module, Some(&irdl));
    assert!(
        descriptors.contains(&"memref.subview.constr".to_owned()),
        "{descriptors:?}"
    );
    assert!(!descriptors.contains(&"memref.subview".to_owned()));
}

/// The `convert-linalg-to-loops` lowering is numerically correct: a
/// bufferized `linalg.matmul` lowered to loops computes the right product.
#[test]
fn lowered_linalg_matmul_computes_correctly() {
    let mut ctx = full_context();
    let module = td_ir::parse_module(
        &mut ctx,
        r#"module {
  func.func @mm(%a: memref<2x3xf32>, %b: memref<3x2xf32>, %c: memref<2x2xf32>) {
    "linalg.matmul"(%a, %b, %c) : (memref<2x3xf32>, memref<3x2xf32>, memref<2x2xf32>) -> ()
    func.return
  }
}"#,
    )
    .unwrap();
    use td_ir::Pass;
    td_dialects::passes::LinalgToLoopsPass
        .run(&mut ctx, module)
        .unwrap();
    td_ir::verify::verify(&ctx, module).unwrap();
    let mut args = ArgBuilder::new();
    let a = args.buffer(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    let b = args.buffer(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
    let c = args.buffer(vec![0.0; 4]);
    let buffers = args.into_buffers();
    let (_, buffers, _) = run_function_with_buffers(
        &ctx,
        module,
        "mm",
        vec![a, b, c],
        buffers,
        ExecConfig::default(),
        None,
    )
    .unwrap();
    assert_eq!(buffers[2], vec![58.0, 64.0, 139.0, 154.0]);
}
